// Videostream: the computer-center scenario of Section 3.3 — three
// concurrent streaming applications (video encoding, an audio filter bank,
// image analysis) on a mixed big/little cluster. The platform manager
// secures a per-application throughput target, then pays the least energy
// for it (the paper's "server problem"), and finally compares both
// communication models.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	inst := repro.StreamingCenter(10)
	fmt.Printf("platform: %d processors (%v), %d applications\n",
		inst.Platform.NumProcessors(), inst.Platform.Classify(), len(inst.Apps))

	// Step 1: how fast can the center run everything, ignoring energy?
	fastest, err := repro.Solve(&inst, repro.Request{
		Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Period,
		Seed: 42, HeurIters: 6000, HeurRestarts: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best weighted period   : %.3f (method: %s)\n", fastest.Value, fastest.Method)
	fmt.Printf("energy at full tilt    : %.1f\n", fastest.Metrics.Energy)

	// Step 2: the manager only needs 70%% of that throughput; find the
	// cheapest configuration that still meets it (server problem).
	target := fastest.Value / 0.7
	eco, err := repro.Solve(&inst, repro.Request{
		Rule: repro.Interval, Model: repro.Overlap, Objective: repro.Energy,
		PeriodBounds: repro.UniformBounds(&inst, target),
		Seed:         42, HeurIters: 6000, HeurRestarts: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("period target          : %.3f\n", target)
	fmt.Printf("energy at target       : %.1f (%.0f%% of full tilt)\n",
		eco.Value, 100*eco.Value/fastest.Metrics.Energy)

	fmt.Println("\neco mapping:")
	for a := range eco.Mapping.Apps {
		fmt.Printf("  %s:\n", inst.Apps[a].Name)
		for _, iv := range eco.Mapping.Apps[a].Intervals {
			proc := inst.Platform.Processors[iv.Proc]
			fmt.Printf("    stages %d-%d -> %s at speed %g\n",
				iv.From+1, iv.To+1, proc.Name, proc.Speeds[iv.Mode])
		}
	}

	// Step 3: confirm by simulation and compare communication models.
	sims, err := repro.Simulate(&inst, &eco.Mapping, repro.Overlap, repro.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmeasured steady-state periods (overlap model):")
	for a, s := range sims {
		fmt.Printf("  %-6s period %.3f  first-result latency %.3f\n",
			inst.Apps[a].Name, s.SteadyPeriod, s.FirstLatency)
	}
	noOverlap := repro.Evaluate(&inst, &eco.Mapping, repro.NoOverlap)
	fmt.Printf("\nsame mapping under the no-overlap model: period %.3f (vs %.3f)\n",
		noOverlap.Period, eco.Metrics.Period)
}
