// Quickstart: build a small instance by hand, minimize its period, inspect
// the mapping, and confirm the analytic metrics against the discrete-event
// simulator.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 5-stage image filter chain: decode, two filters, sharpen, encode.
	app := repro.Application{
		Name: "filter-chain",
		In:   4, // input frame size
		Stages: []repro.Stage{
			{Work: 2, Out: 4},
			{Work: 6, Out: 4},
			{Work: 6, Out: 4},
			{Work: 8, Out: 2},
			{Work: 3, Out: 1},
		},
		Weight: 1,
	}

	// Four identical processors with three DVFS modes each, all links at
	// bandwidth 2 — a fully homogeneous platform, so the paper's
	// polynomial interval algorithms apply.
	inst := repro.Instance{
		Apps:     []repro.Application{app},
		Platform: repro.NewHomogeneousPlatform(4, []float64{1, 2, 4}, 2, 1),
		Energy:   repro.EnergyModel{Static: 0.5, Alpha: 2},
	}

	res, err := repro.Solve(&inst, repro.Request{
		Rule:      repro.Interval,
		Model:     repro.Overlap,
		Objective: repro.Period,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("method : %s (optimal: %v)\n", res.Method, res.Optimal)
	fmt.Printf("period : %.3f   latency: %.3f   energy: %.3f\n",
		res.Metrics.Period, res.Metrics.Latency, res.Metrics.Energy)
	for _, iv := range res.Mapping.Apps[0].Intervals {
		speed := inst.Platform.Processors[iv.Proc].Speeds[iv.Mode]
		fmt.Printf("  stages %d-%d -> processor %d at speed %g\n",
			iv.From+1, iv.To+1, iv.Proc+1, speed)
	}

	// The simulator must measure exactly the analytic period and latency.
	if err := repro.VerifyMapping(&inst, &res.Mapping, repro.Overlap, 1e-9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulation matches the analytic model")

	// Now the server problem: the least energy that still achieves a
	// period within 1.5x of the optimum.
	budgeted, err := repro.Solve(&inst, repro.Request{
		Rule:         repro.Interval,
		Model:        repro.Overlap,
		Objective:    repro.Energy,
		PeriodBounds: repro.UniformBounds(&inst, res.Metrics.Period*1.5),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("energy at 1.5x period: %.3f (was %.3f at full speed)\n",
		budgeted.Value, res.Metrics.Energy)
}
