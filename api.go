package repro

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/general"
	"repro/internal/mapping"
	"repro/internal/pareto"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/repl"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Model types (Section 3 of the paper; see internal/pipeline).
type (
	// Stage is one stage of a linear chain: computation requirement plus
	// output data size.
	Stage = pipeline.Stage
	// Application is a pipelined linear-chain workflow.
	Application = pipeline.Application
	// Processor is a multi-modal (DVFS) compute resource.
	Processor = pipeline.Processor
	// Platform is the target machine: processors, link bandwidths, and
	// per-application virtual input/output links.
	Platform = pipeline.Platform
	// Instance bundles applications, platform and energy model.
	Instance = pipeline.Instance
	// EnergyModel is Static + speed^Alpha per enrolled processor.
	EnergyModel = pipeline.EnergyModel
	// CommModel selects overlapped or serialized communications.
	CommModel = pipeline.CommModel
	// Class is the platform heterogeneity level.
	Class = pipeline.Class
)

// Mapping types (Section 3.3).
type (
	// Mapping assigns every application's stages to processors and modes.
	Mapping = mapping.Mapping
	// AppMapping is one application's ordered interval decomposition.
	AppMapping = mapping.AppMapping
	// PlacedInterval is a stage range on a processor at a fixed mode.
	PlacedInterval = mapping.PlacedInterval
	// Rule selects one-to-one or interval mappings.
	Rule = mapping.Rule
	// Metrics reports period, latency and energy of a mapping.
	Metrics = mapping.Metrics
)

// Solver types (the paper's contribution; see internal/core).
type (
	// Request describes an optimization problem for Solve.
	Request = core.Request
	// Result is a solved mapping with provenance and metrics.
	Result = core.Result
	// Criterion is the objective to minimize.
	Criterion = core.Criterion
	// Method records which algorithm produced a result.
	Method = core.Method
)

// Simulation types (see internal/sim).
type (
	// SimResult is the measured behaviour of one application.
	SimResult = sim.Result
	// SimOptions configures a simulation run.
	SimOptions = sim.Options
)

// ParetoPoint is one (period, energy) trade-off with a witness mapping.
type ParetoPoint = pareto.Point

// Communication models.
const (
	Overlap   = pipeline.Overlap
	NoOverlap = pipeline.NoOverlap
)

// Mapping rules.
const (
	OneToOne = mapping.OneToOne
	Interval = mapping.Interval
)

// Objectives.
const (
	Period  = core.Period
	Latency = core.Latency
	Energy  = core.Energy
)

// Platform classes.
const (
	FullyHomogeneous   = pipeline.FullyHomogeneous
	CommHomogeneous    = pipeline.CommHomogeneous
	FullyHeterogeneous = pipeline.FullyHeterogeneous
)

// DefaultEnergy is the paper's example model: no static part, alpha = 2.
var DefaultEnergy = pipeline.DefaultEnergy

// Errors surfaced by Solve.
var (
	// ErrInfeasible reports that no mapping satisfies the bounds.
	ErrInfeasible = core.ErrInfeasible
	// ErrUnsupported reports a criteria combination the paper rules out.
	ErrUnsupported = core.ErrUnsupported
)

// Solve minimizes the requested criterion under the request's bounds,
// dispatching per the paper's complexity tables (see package core).
func Solve(inst *Instance, req Request) (Result, error) {
	return core.Solve(inst, req)
}

// Batch solving types (see internal/batch).
type (
	// Job is one batch solver invocation: an instance plus a request.
	Job = batch.Job
	// BatchOptions configures SolveBatch (worker count, shared cache).
	BatchOptions = batch.Options
	// BatchResult pairs one job's Result with its error.
	BatchResult = batch.JobResult
	// BatchStats aggregates a SolveBatch call: cache hits, errors,
	// per-method counts and wall time.
	BatchStats = batch.Stats
	// SolveCache memoizes solver results across SolveBatch calls.
	SolveCache = batch.Cache
	// SolveCacheStats is a snapshot of a SolveCache's counters: entries,
	// configured cap, hits, misses and evictions.
	SolveCacheStats = batch.CacheStats
)

// NewSolveCache returns an empty, unbounded memoization cache that can be
// shared by successive SolveBatch calls (and by concurrent ones: it is
// safe for concurrent use).
func NewSolveCache() *SolveCache { return batch.NewCache() }

// NewSolveCacheCap returns a memoization cache bounded to at most
// maxEntries memoized keys; beyond the cap the least recently used entries
// are evicted. A non-positive cap means unbounded. A bounded cache is the
// right choice for a long-running process (see cmd/pipeserved) where an
// unbounded memo would grow for the life of the server. Inspect usage via
// (*SolveCache).Stats.
func NewSolveCacheCap(maxEntries int) *SolveCache { return batch.NewCacheCap(maxEntries) }

// SolveBatch solves every job concurrently on a bounded worker pool,
// deduplicating identical jobs through a canonical-key memoization cache,
// and returns per-job results in input order plus aggregate statistics.
// Each result is bit-identical to what sequential Solve returns for the
// same job; a failing job only poisons its own slot.
func SolveBatch(jobs []Job, opts BatchOptions) ([]BatchResult, BatchStats) {
	return batch.Solve(jobs, opts)
}

// SolveBatchCtx is SolveBatch with cancellation: once ctx is done, jobs
// that have not started return ctx.Err() in their slot, workers stop
// picking up new jobs, and the call returns promptly (a job already inside
// the solver runs to completion). Results computed before the cancellation
// are kept, so partial progress is not thrown away.
func SolveBatchCtx(ctx context.Context, jobs []Job, opts BatchOptions) ([]BatchResult, BatchStats) {
	return batch.SolveCtx(ctx, jobs, opts)
}

// Compiled-plan types (see internal/plan).
type (
	// Plan is an immutable compiled solver state for one (instance, rule,
	// communication model) triple, answering many criterion/bound queries
	// without re-deriving per-instance state. Safe for concurrent use.
	Plan = plan.Plan
	// PlanQuery is one criterion/bound question against a compiled plan:
	// a Request minus the fields fixed at compile time.
	PlanQuery = plan.Query
	// PlanStats snapshots a plan's query counters (queries, memo hits,
	// memo entries, evictions).
	PlanStats = plan.Stats
)

// Compile validates and preprocesses an instance once into a Plan whose
// queries — Plan.Solve(PlanQuery{...}) — are bit-identical to fresh Solve
// calls with the same rule, model and query fields, but amortize
// validation, classification and per-instance precomputation across the
// whole query stream, and answer repeated queries from a memo. Use
// PlanQueryOf to project an existing Request onto the query axes.
func Compile(inst *Instance, rule Rule, model CommModel) (*Plan, error) {
	return plan.Compile(inst, rule, model)
}

// PlanQueryOf projects a Request onto the plan query axes, dropping the
// rule and communication model (they are fixed by the plan).
func PlanQueryOf(req Request) PlanQuery { return plan.QueryOf(req) }

// UniformBounds turns a single global weighted threshold X into the
// per-application bound array X / W_a.
func UniformBounds(inst *Instance, x float64) []float64 {
	return core.UniformBounds(inst, x)
}

// StretchWeights reweights every application by the inverse of its solo
// objective so the weighted max becomes the maximum stretch (Section 3.4).
func StretchWeights(inst *Instance, req Request) (Instance, error) {
	return core.StretchWeights(inst, req)
}

// Evaluate computes period, latency and energy of a mapping analytically
// (Equations 3-6).
func Evaluate(inst *Instance, m *Mapping, model CommModel) Metrics {
	return mapping.Evaluate(inst, m, model)
}

// ValidateMapping checks that m is a legal mapping of inst under the rule.
func ValidateMapping(inst *Instance, m *Mapping, rule Rule) error {
	return m.Validate(inst, rule)
}

// Simulate executes the mapping dataset-by-dataset under the ASAP schedule
// and returns the measured per-application latency and steady-state period.
func Simulate(inst *Instance, m *Mapping, model CommModel, opt SimOptions) ([]SimResult, error) {
	return sim.Simulate(inst, m, model, opt)
}

// VerifyMapping simulates m and checks the measurements against the
// analytic formulas within tol, returning a descriptive error on mismatch.
func VerifyMapping(inst *Instance, m *Mapping, model CommModel, tol float64) error {
	return sim.Verify(inst, m, model, tol)
}

// ParetoPeriodEnergy computes the period/energy trade-off frontier under
// the given rule. On the platform classes where the paper's bi-criteria
// algorithms are polynomial (fully homogeneous interval mappings,
// communication homogeneous one-to-one mappings) the frontier is built by a
// polynomial candidate sweep; otherwise it falls back to exhaustive
// enumeration, subject to the same search-space limits as Solve.
func ParetoPeriodEnergy(inst *Instance, rule Rule, model CommModel) ([]ParetoPoint, error) {
	return ParetoPeriodEnergyCtx(context.Background(), inst, rule, model)
}

// ParetoPeriodEnergyCtx is ParetoPeriodEnergy with cancellation: the
// polynomial candidate sweeps stop between candidate solves once ctx is
// done (the exhaustive fallback honours ctx only before it starts).
func ParetoPeriodEnergyCtx(ctx context.Context, inst *Instance, rule Rule, model CommModel) ([]ParetoPoint, error) {
	return pareto.PeriodEnergyCtx(ctx, inst, rule, model, batch.Options{})
}

// MinEnergyUnderPeriod answers the server problem on a frontier.
func MinEnergyUnderPeriod(front []ParetoPoint, target float64) float64 {
	return pareto.MinEnergyUnderPeriod(front, target)
}

// MinPeriodUnderEnergy answers the laptop problem on a frontier.
func MinPeriodUnderEnergy(front []ParetoPoint, budget float64) float64 {
	return pareto.MinPeriodUnderEnergy(front, budget)
}

// MotivatingExample returns the Section 2 / Figure 1 instance.
func MotivatingExample() Instance { return pipeline.MotivatingExample() }

// StreamingCenter returns the mixed video/audio/image preset instance on p
// processors.
func StreamingCenter(p int) Instance { return workload.StreamingCenter(p) }

// NewHomogeneousPlatform builds a fully homogeneous platform: p identical
// processors with the given mode set and uniform bandwidth b, sized for
// numApps applications.
func NewHomogeneousPlatform(p int, speeds []float64, b float64, numApps int) Platform {
	return pipeline.NewHomogeneousPlatform(p, speeds, b, numApps)
}

// NewCommHomogeneousPlatform builds a communication homogeneous platform
// from per-processor speed sets with uniform bandwidth b.
func NewCommHomogeneousPlatform(speedSets [][]float64, b float64, numApps int) Platform {
	return pipeline.NewCommHomogeneousPlatform(speedSets, b, numApps)
}

// NewHeterogeneousPlatform builds a fully heterogeneous platform from
// explicit speed sets and bandwidth matrices.
func NewHeterogeneousPlatform(speedSets [][]float64, bw, in, out [][]float64) Platform {
	return pipeline.NewHeterogeneousPlatform(speedSets, bw, in, out)
}

// RandomInstance draws a reproducible random instance; see
// internal/workload for the configuration type.
func RandomInstance(rng *rand.Rand, cfg workload.Config) (Instance, error) {
	return workload.Instance(rng, cfg)
}

// GenerateInstance draws scenario `index` of the seeded verification
// corpus (see internal/gen): a small instance plus a matching solver
// request, cycling through every platform class, communication model,
// mapping rule and criterion combination as the index advances (any 36
// consecutive indices cover all combinations exactly once), with
// degenerate shapes mixed in every 5th draw. The draw is a pure function
// of (seed, index). This is the same corpus the differential harness
// (internal/diffcheck) verifies and BenchmarkCorpus measures, so clients
// can replay the exact instances behind BENCH_solver.json.
func GenerateInstance(seed int64, index int) (Instance, Request) {
	sc := gen.DefaultSpace().Sample(seed, index)
	return sc.Inst, sc.Req
}

// WorkloadConfig re-exports the random instance configuration.
type WorkloadConfig = workload.Config

// DecodeInstance parses an instance from the JSON schema used by the cmd/
// tools, validating it.
func DecodeInstance(r io.Reader) (Instance, error) { return pipeline.DecodeJSON(r) }

// EncodeInstance writes an instance in the tool JSON schema.
func EncodeInstance(w io.Writer, inst *Instance) error { return pipeline.EncodeJSON(w, inst) }

// Replication extension (the paper's Section 6 future work; package repl).
type (
	// ReplicatedMapping allows an interval to be served by several
	// processors in round-robin over data sets.
	ReplicatedMapping = repl.Mapping
	// ReplicatedInterval is a stage range with its replica set.
	ReplicatedInterval = repl.Interval
	// Replica is one processor/mode pair of a replicated interval.
	Replica = repl.Replica
)

// LiftMapping converts a plain interval mapping into a replicated mapping
// with one replica per interval.
func LiftMapping(m *Mapping) ReplicatedMapping { return repl.Lift(m) }

// ReplicatedMinPeriod minimizes the weighted global period over replicated
// interval mappings on a fully homogeneous platform (replicated chain DP
// plus Algorithm 2). Processors run at their fastest mode.
func ReplicatedMinPeriod(inst *Instance, model CommModel) (ReplicatedMapping, float64, error) {
	return repl.MinPeriodFullyHom(inst, model)
}

// EvaluateReplicated computes the period, worst-path latency and energy of
// a replicated mapping.
func EvaluateReplicated(inst *Instance, rm *ReplicatedMapping, model CommModel) Metrics {
	return Metrics{
		Period:  repl.Period(inst, rm, model),
		Latency: repl.Latency(inst, rm),
		Energy:  repl.Energy(inst, rm),
	}
}

// SimulateReplicated executes a replicated mapping with round-robin
// dispatch and in-order delivery.
func SimulateReplicated(inst *Instance, rm *ReplicatedMapping, model CommModel, opt SimOptions) ([]SimResult, error) {
	return sim.SimulateReplicated(inst, rm, model, opt)
}

// VerifyReplicatedMapping checks the replicated simulator against the
// analytic replicated formulas within tol.
func VerifyReplicatedMapping(inst *Instance, rm *ReplicatedMapping, model CommModel, tol float64) error {
	return sim.VerifyReplicated(inst, rm, model, tol)
}

// ReplicatedMinEnergy minimizes the total energy of a replicated interval
// mapping under per-application period bounds on a fully homogeneous
// multi-modal platform (replicated Theorem 18 DP + Theorem 21 combiner).
// With a steep energy exponent, several slow replicas can meet a
// throughput target more cheaply than one fast processor.
func ReplicatedMinEnergy(inst *Instance, model CommModel, periodBounds []float64) (ReplicatedMapping, float64, error) {
	return repl.MinEnergyGivenPeriodFullyHom(inst, model, periodBounds)
}

// General mappings (the Section 3.3 excluded class; package general). Only
// communication-free instances are supported — with transfers, even
// scheduling a fixed general mapping is a hard combinatorial problem,
// which is precisely why the paper restricts itself to interval mappings.
type GeneralMapping = general.Mapping

// GeneralMinPeriod exhaustively minimizes the period over general mappings
// (processor sharing allowed) on a communication-free instance. Exponential
// with branch-and-bound pruning; limit caps the explored leaves.
func GeneralMinPeriod(inst *Instance, limit int64) (GeneralMapping, float64, error) {
	return general.ExactMinPeriod(inst, limit)
}

// GeneralLPT is the longest-processing-time heuristic for general mappings
// on communication-free instances; within Graham's 4/3 - 1/(3p) factor of
// the optimum on identical processors.
func GeneralLPT(inst *Instance) (GeneralMapping, float64, error) {
	return general.LPT(inst)
}

// ReplicatedHeurMinPeriod heuristically minimizes the weighted global
// period over replicated interval mappings on an arbitrary platform
// (simulated annealing over the replicated neighbourhood, deterministic
// per seed). On fully homogeneous platforms prefer ReplicatedMinPeriod,
// which is exact and polynomial.
func ReplicatedHeurMinPeriod(inst *Instance, model CommModel, seed int64, iters, restarts int) (ReplicatedMapping, float64, error) {
	rng := rand.New(rand.NewSource(seed))
	return repl.HeurMinPeriod(rng, inst, model, repl.HeurOptions{Iters: iters, Restarts: restarts})
}

// Fault tolerance (see internal/chaos): deterministic fault injection
// against running mappings plus failure re-solving with migration diffs.
type (
	// FaultKind is the category of a fault event.
	FaultKind = chaos.Kind
	// FaultEvent is one fault: a kind plus the indices/factor it acts on.
	FaultEvent = chaos.Event
	// FaultSchedule is a replayable fault stream; equal seeds over equal
	// instances yield bit-identical schedules.
	FaultSchedule = chaos.Schedule
	// AppliedFault is one event's outcome: the mutated, re-validated
	// instance plus the processor index translation it induced.
	AppliedFault = chaos.Applied
	// MigrationDiff quantifies the move from a pre-fault mapping to its
	// re-solved successor (stages moved, mode changes, processors
	// retired/enrolled, disruption cost).
	MigrationDiff = chaos.MigrationDiff
	// ResolveResult is a failure re-solve: the event, the mutated
	// instance, simulator-verified before/after results, and their diff.
	ResolveResult = chaos.ResolveResult
)

// Fault kinds.
const (
	ProcFail    = chaos.ProcFail
	ModeDrop    = chaos.ModeDrop
	WeightDrift = chaos.WeightDrift
	Slowdown    = chaos.Slowdown
)

// ErrFaultInapplicable classifies an event the instance cannot absorb
// (failing the last processor, dropping a mode of a uni-modal processor).
// It is a classification, not a crash; test with errors.Is.
var ErrFaultInapplicable = chaos.ErrInapplicable

// GenerateFaults draws a deterministic schedule of n fault events for the
// instance: equal (seed, instance) pairs replay bit-identically, and every
// event is applicable to the instance state it will see in order.
func GenerateFaults(seed int64, inst *Instance, n int) (FaultSchedule, error) {
	return chaos.Generate(seed, inst, n)
}

// ApplyFault applies one event to a deep copy of inst and re-validates the
// mutated instance; inst itself is never written.
func ApplyFault(inst *Instance, ev FaultEvent) (AppliedFault, error) {
	return chaos.Apply(inst, ev)
}

// InjectFaults applies a whole event stream in order, returning every
// intermediate re-validated state.
func InjectFaults(inst *Instance, events []FaultEvent) ([]AppliedFault, error) {
	return chaos.Inject(inst, events)
}

// Resolve computes the post-fault mapping for a compiled plan's problem:
// solve the pre-fault query, apply the event, recompile, re-solve, verify
// both mappings through the simulator, and return them with a migration
// diff. Deterministic: the same (plan, query, event) triple always yields
// bit-identical results.
func Resolve(pl *Plan, q PlanQuery, ev FaultEvent) (*ResolveResult, error) {
	return chaos.Resolve(pl, q, ev)
}

// ResolveCtx is Resolve under a wall-clock budget: an expired deadline
// degrades the solves to the heuristic path (tagged Degraded/Preempted in
// the results) instead of stalling the caller.
func ResolveCtx(ctx context.Context, pl *Plan, q PlanQuery, ev FaultEvent) (*ResolveResult, error) {
	return chaos.ResolveCtx(ctx, pl, q, ev)
}

// PromoteReplicas repairs a replicated mapping after a fault without
// re-solving: replicas on a retired processor are dropped and their
// group's survivors carry the full load, with indices and modes translated
// into the mutated instance. It returns a wrapped ErrFaultInapplicable
// when an interval loses its only replica — redundancy cannot absorb that
// fault and the caller must fall back to Resolve.
func PromoteReplicas(orig *Instance, rm *ReplicatedMapping, ap *AppliedFault) (ReplicatedMapping, int, error) {
	return chaos.Promote(orig, rm, ap)
}
