// Package repro is a Go reproduction of "Performance and energy
// optimization of concurrent pipelined applications" (Anne Benoit, Paul
// Renaud-Goud, Yves Robert; LIP RR-2009-27 / IPDPS 2010).
//
// The library maps several independent linear-chain (pipelined)
// applications onto a platform of multi-modal (DVFS) processors, optimizing
// combinations of three criteria: period (inverse throughput), latency
// (response time) and energy (total power of enrolled processors). Two
// mapping rules are supported — one-to-one (one stage per processor) and
// interval (consecutive stages per processor) — on three platform classes:
// fully homogeneous, communication homogeneous, and fully heterogeneous,
// under both the overlap and no-overlap communication models.
//
// Solve is the main entry point. It implements the paper's complexity
// tables as a dispatcher: every problem variant the paper proves polynomial
// is solved by the corresponding exact polynomial algorithm (binary search
// plus greedy assignment, chain dynamic programs with the Algorithm 2
// processor allocation, minimum weight bipartite matching); every NP-hard
// variant falls back to exhaustive search when the instance is small and to
// a simulated-annealing heuristic otherwise, with the provenance reported
// in the Result.
//
// Compile is the many-queries-per-instance entry point (see
// internal/plan): it validates, classifies and preprocesses one
// (instance, rule, communication model) triple once into an immutable
// Plan, whose Solve(PlanQuery{...}) queries are bit-identical to fresh
// Solve calls but skip all per-instance work and answer repeated queries
// from a bounded memo with near-zero allocations. Pareto sweeps,
// experiment tables and batches all route through plans; a shared
// SolveCache additionally memoizes the compiled plans themselves (the
// plan tier, inspectable via SolveCacheStats).
//
// SolveBatch is the concurrent engine on top of Solve (see
// internal/batch): it fans a slice of independent jobs across a bounded
// worker pool, deduplicates identical jobs through a canonical-key
// memoization cache (shareable across calls via NewSolveCache), and
// returns per-job results in input order with aggregate statistics. Every
// result is bit-identical to what sequential Solve returns for the same
// job. The Pareto frontier builders and the experiment table drivers run
// on this engine, which compiles each distinct instance once per batch
// through the cache's plan tier.
//
// SolveBatchCtx is the context-aware form for long-lived processes: when
// the context is cancelled, jobs that have not started return ctx.Err()
// in their slot, workers stop picking up new work, and results computed
// before the cancellation are kept. Pair it with NewSolveCacheCap, which
// bounds the shared memoization cache to a fixed number of entries
// (sharded LRU with eviction statistics), so one cache can serve an
// arbitrarily long request stream — cmd/pipeserved runs the solver as an
// HTTP service exactly this way.
//
// The invariants these layers rely on — memoized plans and results never
// escaping their caches uncloned, contexts flowing to every blocking call,
// sentinel errors matched with errors.Is, float comparisons routed through
// internal/fmath, and solver output depending only on (instance, seed) —
// are enforced mechanically by the pipelint analyzer suite in
// internal/lint (binary: cmd/pipelint, run by make lint and CI). See that
// package's documentation for each analyzer and the //lint:allow
// suppression directive.
//
// A discrete-event simulator (Simulate, VerifyMapping) executes mappings
// dataset-by-dataset and reproduces the analytic period and latency
// formulas, and Pareto frontier builders answer the paper's laptop problem
// ("best performance within an energy budget") and server problem ("least
// energy for a performance target").
//
// The fault-tolerance layer (see internal/chaos) models platform churn:
// GenerateFaults draws a deterministic, replayable schedule of fault
// events (processor failure, DVFS mode drop, weight drift, slowdown),
// ApplyFault/InjectFaults mutate and re-validate instances, and Resolve
// re-solves a compiled plan's problem after a fault, returning
// simulator-verified before/after results with a MigrationDiff. Solves
// under a budget (BatchOptions.SolveBudget, Plan.SolveCtx, ResolveCtx)
// degrade gracefully: when the exact path exceeds its budget the result
// falls back to the heuristic, tagged Degraded with a provable LowerBound
// — never silently.
//
// # Quick start
//
//	inst := repro.MotivatingExample() // Section 2 of the paper
//	res, err := repro.Solve(&inst, repro.Request{
//		Rule:      repro.Interval,
//		Model:     repro.Overlap,
//		Objective: repro.Energy,
//		PeriodBounds: repro.UniformBounds(&inst, 2),
//	})
//	// res.Value == 46, the paper's period/energy trade-off.
//
// Batch form, solving many requests at once:
//
//	results, stats := repro.SolveBatch([]repro.Job{
//		{Inst: &inst, Req: req1},
//		{Inst: &inst, Req: req2},
//	}, repro.BatchOptions{})
//	// results[i] answers jobs[i]; stats counts cache hits and methods.
//
// Compile-once/query-many form, for many questions about one instance:
//
//	pl, _ := repro.Compile(&inst, repro.Interval, repro.Overlap)
//	minPeriod, _ := pl.Solve(repro.PlanQuery{Objective: repro.Period})
//	minLatency, _ := pl.Solve(repro.PlanQuery{Objective: repro.Latency})
//	// Bit-identical to repro.Solve, minus the per-request setup.
//
// See README.md for an overview, examples/ for runnable programs, the
// cmd/ directory for the command-line tools (pipegen, pipemap, pipebatch,
// pipesim, pipebench, and the pipeserved HTTP service), and
// EXPERIMENTS.md for the paper-versus-measured record of every reproduced
// artifact.
package repro
