package repro

// One benchmark per reproduced artifact (see EXPERIMENTS.md's per-experiment
// index). The polynomial cells are benchmarked across sizes so their
// polynomial wall-clock growth is visible next to the exponential growth of
// the exhaustive solver on the NP-hard cells; `go test -bench=. -benchmem`
// regenerates every number recorded in EXPERIMENTS.md.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/algo/exact"
	"repro/internal/algo/heur"
	"repro/internal/algo/interval"
	"repro/internal/algo/matching"
	"repro/internal/algo/onetoone"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mapping"
	"repro/internal/npc"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkFig1MotivatingExample regenerates all four Section 2 numbers by
// exhaustive search (experiment FIG1).
func BenchmarkFig1MotivatingExample(b *testing.B) {
	inst := pipeline.MotivatingExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
		if err != nil || !eq(p.Value, 1) {
			b.Fatalf("period %v %v", p.Value, err)
		}
		l, err := exact.MinLatency(&inst, mapping.Interval)
		if err != nil || !eq(l.Value, 2.75) {
			b.Fatalf("latency %v %v", l.Value, err)
		}
		e, err := exact.MinEnergy(&inst, mapping.Interval)
		if err != nil || !eq(e.Value, 10) {
			b.Fatalf("energy %v %v", e.Value, err)
		}
		t, err := exact.MinEnergyGivenPeriod(&inst, mapping.Interval, pipeline.Overlap, []float64{2, 2})
		if err != nil || !eq(t.Value, 46) {
			b.Fatalf("trade-off %v %v", t.Value, err)
		}
	}
}

func eq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// BenchmarkTable1PeriodOneToOne is Theorem 1 (polynomial cell TAB1-P-O2O):
// binary search plus greedy assignment on communication homogeneous
// platforms, across sizes.
func BenchmarkTable1PeriodOneToOne(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: n + 2, Modes: 2,
				Class: pipeline.CommHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := onetoone.MinPeriodCommHom(&inst, pipeline.Overlap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1PeriodOneToOneHet is the NP-complete cell TAB1-P-O2O-HET
// (Theorem 2): exhaustive search on fully heterogeneous platforms, with
// visibly exponential growth in N.
func BenchmarkTable1PeriodOneToOneHet(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			cfg := workload.Config{
				Apps: 1, MinStages: n, MaxStages: n, Procs: n, Modes: 1,
				Class: pipeline.FullyHeterogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8, MaxBandwidth: 4,
			}
			inst := workload.MustInstance(rng, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exact.MinPeriod(&inst, mapping.OneToOne, pipeline.Overlap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1PeriodInterval is Theorem 3 (polynomial cell TAB1-P-INT):
// the chain DP plus Algorithm 2 on fully homogeneous platforms.
func BenchmarkTable1PeriodInterval(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: 16, Modes: 2,
				Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1PeriodIntervalSpecial is the NP-complete special-app cell
// TAB1-P-INT-SPEC (Theorem 5): a 3-partition gadget solved exactly (small
// m) and heuristically.
func BenchmarkTable1PeriodIntervalSpecial(b *testing.B) {
	tp := npc.ThreePartition{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}
	inst := npc.EncodePeriodInterval(tp)
	b.Run("exact/m=2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := exact.MinPeriod(&inst, mapping.Interval, pipeline.Overlap)
			if err != nil || !eq(sol.Value, 1) {
				b.Fatalf("period %v %v", sol.Value, err)
			}
		}
	})
	b.Run("heuristic/m=2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(1))
			if _, _, err := heur.MinPeriod(rng, &inst, mapping.Interval, pipeline.Overlap,
				heur.Options{Iters: 1500, Restarts: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable1LatencyOneToOne covers both halves of the TAB1-L-O2O row:
// the trivial fully homogeneous cell (Theorem 8) and the NP-complete
// special-app cell via the Theorem 9 gadget.
func BenchmarkTable1LatencyOneToOne(b *testing.B) {
	b.Run("fullyhom/Thm8", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		cfg := workload.Config{Apps: 2, MinStages: 4, MaxStages: 4, Procs: 10, Modes: 2,
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8}
		inst := workload.MustInstance(rng, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := onetoone.MinLatencyFullyHom(&inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gadget/Thm9", func(b *testing.B) {
		tp := npc.ThreePartition{B: 10, Items: []int{3, 3, 4, 2, 4, 4}}
		inst := npc.EncodeLatencyOneToOne(tp)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sol, err := exact.MinLatency(&inst, mapping.OneToOne)
			if err != nil || !eq(sol.Value, 10) {
				b.Fatalf("latency %v %v", sol.Value, err)
			}
		}
	})
}

// BenchmarkTable1LatencyInterval is Theorem 12 (polynomial cell
// TAB1-L-INT): whole-application greedy on communication homogeneous
// platforms.
func BenchmarkTable1LatencyInterval(b *testing.B) {
	for _, a := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("A=%d", a), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(a)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: a, MinStages: 3, MaxStages: 6, Procs: a + 4, Modes: 3,
				Class: pipeline.CommHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := interval.MinLatencyCommHom(&inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2PeriodLatency is the Theorem 15-16 bi-criteria DP
// (polynomial cell TAB2-PL): latency under a period bound on fully
// homogeneous platforms.
func BenchmarkTable2PeriodLatency(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: 12, Modes: 1,
				Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			m, t, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			_ = m
			bounds := core.UniformBounds(&inst, t*1.3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := interval.MinLatencyGivenPeriodFullyHom(&inst, pipeline.Overlap, bounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2PeriodEnergyOneToOne is the Theorem 19 matching
// (polynomial cell TAB2-PE-O2O).
func BenchmarkTable2PeriodEnergyOneToOne(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: n + 2, Modes: 3,
				Class: pipeline.CommHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			_, t, err := onetoone.MinPeriodCommHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			bounds := core.UniformBounds(&inst, t*1.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := matching.MinEnergyGivenPeriodCommHom(&inst, pipeline.Overlap, bounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2PeriodEnergyInterval is the Theorem 18+21 energy DP
// (polynomial cell TAB2-PE-INT).
func BenchmarkTable2PeriodEnergyInterval(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			inst := workload.MustInstance(rng, workload.Config{
				Apps: 2, MinStages: n / 2, MaxStages: n / 2, Procs: 12, Modes: 3,
				Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
			})
			_, t, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
			if err != nil {
				b.Fatal(err)
			}
			bounds := core.UniformBounds(&inst, t*1.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := interval.MinEnergyGivenPeriodFullyHom(&inst, pipeline.Overlap, bounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2TriCriteriaUniModal is the polynomial tri-criteria cell
// TAB2-PLE-UNI (Theorems 23-24).
func BenchmarkTable2TriCriteriaUniModal(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	inst := workload.MustInstance(rng, workload.Config{
		Apps: 3, MinStages: 8, MaxStages: 8, Procs: 12, Modes: 1,
		Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 4,
	})
	_, t, err := interval.MinPeriodFullyHom(&inst, pipeline.Overlap)
	if err != nil {
		b.Fatal(err)
	}
	per := core.UniformBounds(&inst, t*1.4)
	lat := core.UniformBounds(&inst, 1e9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := interval.MinEnergyGivenPeriodLatencyUniModal(&inst, pipeline.Overlap, per, lat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2TriCriteriaMultiModal is the NP-hard multi-modal cell
// TAB2-PLE-MULTI (Theorem 26): the 2-partition gadget solved exactly, and
// the announced-future-work heuristic on the same instance.
func BenchmarkTable2TriCriteriaMultiModal(b *testing.B) {
	tp := npc.TwoPartition{Items: []int{1, 2, 3}}
	g := npc.EncodeTriCriteriaOneToOne(tp, 8, 0.01)
	b.Run("exact/gadget-n=3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.MinEnergyGivenPeriodLatency(&g.Instance, g.Rule, pipeline.Overlap,
				[]float64{g.PeriodBound}, []float64{g.LatencyBound}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("heuristic/gadget-n=3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(1))
			_, _, err := heur.MinEnergyGivenPeriodLatency(rng, &g.Instance, g.Rule, pipeline.Overlap,
				[]float64{g.PeriodBound}, []float64{g.LatencyBound}, heur.Options{Iters: 1200, Restarts: 2})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorValidation measures the discrete-event substrate
// (experiment SIM): pushing data sets through a mapped instance under both
// communication models.
func BenchmarkSimulatorValidation(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	inst := workload.StreamingCenter(10)
	m, err := workload.RandomMapping(rng, &inst)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range []pipeline.CommModel{pipeline.Overlap, pipeline.NoOverlap} {
		b.Run(model.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Simulate(&inst, &m, model, sim.Options{Datasets: 1000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParetoFront builds period/energy frontiers (experiment PARETO):
// exhaustively on the Fig. 1 instance and polynomially on a fully
// homogeneous platform.
func BenchmarkParetoFront(b *testing.B) {
	b.Run("exact/fig1", func(b *testing.B) {
		inst := pipeline.MotivatingExample()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exact.ParetoFront(&inst, mapping.Interval, pipeline.Overlap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dp/fullyhom-N=24", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		inst := workload.MustInstance(rng, workload.Config{
			Apps: 2, MinStages: 12, MaxStages: 12, Procs: 10, Modes: 3,
			Class: pipeline.FullyHomogeneous, MaxWork: 9, MaxData: 5, MaxSpeed: 8,
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			front, err := ParetoPeriodEnergy(&inst, Interval, Overlap)
			if err != nil || len(front) == 0 {
				b.Fatalf("front %d %v", len(front), err)
			}
		}
	})
}

// BenchmarkCoreSolveDispatch measures the full dispatcher on the streaming
// preset (exact fallback capped, heuristic path).
func BenchmarkCoreSolveDispatch(b *testing.B) {
	inst := StreamingCenter(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Solve(&inst, Request{Rule: Interval, Objective: Period,
			ExactLimit: 10_000, HeurIters: 500, HeurRestarts: 1, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// corpusSeed pins the BenchmarkCorpus draw so BENCH_solver.json is
// comparable across commits; the instances behind every variant can be
// replayed with GenerateInstance(corpusSeed, i).
const corpusSeed int64 = 1

// corpusVariantRecord is one per-variant entry of BENCH_solver.json.
type corpusVariantRecord struct {
	// Name is the (class, rule, model, criterion) combination label.
	Name string `json:"name"`
	// Scenarios is how many corpus instances one op solves.
	Scenarios int `json:"scenarios"`
	// N is the benchmark iteration count behind the numbers.
	N int `json:"n"`
	// NsPerOp and AllocsPerOp are per op, i.e. per batch of Scenarios
	// solves.
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// PlanNsPerOp and PlanAllocsPerOp measure the same scenario batch
	// answered as repeat queries against pre-compiled plans (the
	// compile-once/query-many path: plans compiled and warmed outside the
	// timer, so the op is the steady-state memo hit). PlanN is that
	// sub-benchmark's iteration count and PlanSpeedup is
	// NsPerOp / PlanNsPerOp — how much faster the repeat-query path
	// answers the variant than fresh one-shot solves.
	PlanNsPerOp     float64 `json:"planNsPerOp"`
	PlanAllocsPerOp float64 `json:"planAllocsPerOp"`
	PlanN           int     `json:"planN"`
	PlanSpeedup     float64 `json:"planSpeedup"`
}

// corpusCacheRecord is the memo-cache block of BENCH_solver.json.
type corpusCacheRecord struct {
	Jobs      int     `json:"jobs"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	HitRate   float64 `json:"hitRate"`
	Entries   int     `json:"entries"`
	NsPerOp   float64 `json:"nsPerOp"`
	N         int     `json:"n"`
	Evictions int64   `json:"evictions"`
}

// corpusDoc is the BENCH_solver.json document.
type corpusDoc struct {
	// Regenerate documents the exact command that rewrites this file.
	Regenerate string                `json:"regenerate"`
	Seed       int64                 `json:"seed"`
	GoOS       string                `json:"goos"`
	GoArch     string                `json:"goarch"`
	Variants   []corpusVariantRecord `json:"variants"`
	Cache      corpusCacheRecord     `json:"cache"`
}

// BenchmarkCorpus is the solver performance baseline: it solves the seeded
// verification corpus (the same instances internal/diffcheck checks for
// correctness) grouped by (class, rule, model, criterion) variant — each
// variant measured both as fresh one-shot solves and as repeat queries
// against pre-compiled plans (the compile-once/query-many path) — plus a
// shared-cache SolveBatch pass, and writes the per-variant ns/op, allocs,
// plan-reuse speedup and cache hit rate to BENCH_solver.json so future
// changes have a recorded baseline to beat:
//
//	go test -bench=Corpus -benchtime=100x -run='^$' .
func BenchmarkCorpus(b *testing.B) {
	space := gen.DefaultSpace()
	scenarios := space.Corpus(corpusSeed, 2*space.CombinationCount())

	variants := make(map[string][]*gen.Scenario)
	var order []string
	for i := range scenarios {
		sc := &scenarios[i]
		name := sc.Combo()
		if _, ok := variants[name]; !ok {
			order = append(order, name)
		}
		variants[name] = append(variants[name], sc)
	}
	sort.Strings(order)

	// Sub-benchmark closures run again for every b.N ramp-up, so records
	// are keyed by name (last, largest-N invocation wins), never appended.
	records := make(map[string]corpusVariantRecord, len(order))
	planDone := make(map[string]bool, len(order))
	var cacheRec *corpusCacheRecord
	for _, name := range order {
		group := variants[name]
		b.Run(name, func(b *testing.B) {
			// Warm the solver arenas outside the timer, then collect: at
			// -benchtime=100x the hot variants finish in well under a
			// millisecond, so a GC pause inherited from an earlier variant's
			// garbage would dominate the whole measurement.
			for _, sc := range group {
				if _, err := Solve(&sc.Inst, sc.Req); err != nil && !errors.Is(err, ErrInfeasible) {
					b.Fatalf("%s: %v", sc.Name, err)
				}
			}
			runtime.GC()
			b.ReportAllocs()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, sc := range group {
					if _, err := Solve(&sc.Inst, sc.Req); err != nil && !errors.Is(err, ErrInfeasible) {
						b.Fatalf("%s: %v", sc.Name, err)
					}
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			records[name] = corpusVariantRecord{
				Name:        name,
				Scenarios:   len(group),
				N:           b.N,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(b.N),
			}
		})
		// The compile-once/query-many path over the same scenario batch:
		// plans are compiled and each query answered once outside the
		// timer, so the measured op is the steady-state repeat query (the
		// plan memo's hit path).
		b.Run(name+"/plan-reuse", func(b *testing.B) {
			plans := make([]*Plan, len(group))
			queries := make([]PlanQuery, len(group))
			for i, sc := range group {
				pl, err := Compile(&sc.Inst, sc.Req.Rule, sc.Req.Model)
				if err != nil {
					b.Fatalf("%s: compile: %v", sc.Name, err)
				}
				plans[i], queries[i] = pl, PlanQueryOf(sc.Req)
				if _, err := pl.Solve(queries[i]); err != nil && !errors.Is(err, ErrInfeasible) {
					b.Fatalf("%s: %v", sc.Name, err)
				}
			}
			runtime.GC() // same noise shield as the one-shot sub-benchmark
			b.ReportAllocs()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range plans {
					if _, err := plans[j].Solve(queries[j]); err != nil && !errors.Is(err, ErrInfeasible) {
						b.Fatalf("%s: %v", group[j].Name, err)
					}
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&m1)
			rec := records[name]
			rec.PlanNsPerOp = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			rec.PlanAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(b.N)
			rec.PlanN = b.N
			if rec.PlanNsPerOp > 0 && rec.NsPerOp > 0 {
				rec.PlanSpeedup = rec.NsPerOp / rec.PlanNsPerOp
			}
			records[name] = rec
			planDone[name] = true
		})
	}

	b.Run("cache/batch-2pass", func(b *testing.B) {
		jobs := make([]Job, 0, len(scenarios))
		for i := range scenarios {
			jobs = append(jobs, Job{Inst: &scenarios[i].Inst, Req: scenarios[i].Req})
		}
		var st SolveCacheStats
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh cache and two passes per op: the first pass misses
			// on every distinct job, the second must hit on all of them,
			// so the recorded hit rate is 0.5 whenever dedup works —
			// independent of b.N and -benchtime.
			cache := NewSolveCache()
			SolveBatch(jobs, BatchOptions{Cache: cache})
			SolveBatch(jobs, BatchOptions{Cache: cache})
			st = cache.Stats()
		}
		b.StopTimer()
		cacheRec = &corpusCacheRecord{
			Jobs:      len(jobs),
			Hits:      st.Hits,
			Misses:    st.Misses,
			HitRate:   st.HitRate(),
			Entries:   st.Entries,
			Evictions: st.Evictions,
			NsPerOp:   float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			N:         b.N,
		}
	})

	// Only a complete run may rewrite the committed baseline: a filtered
	// invocation (e.g. -bench=Corpus/cache) must not clobber it with a
	// partial document.
	if len(records) != len(order) || len(planDone) != len(order) || cacheRec == nil {
		b.Logf("partial corpus run (%d/%d variants, %d/%d plan passes, cache %v): BENCH_solver.json left untouched",
			len(records), len(order), len(planDone), len(order), cacheRec != nil)
		return
	}
	doc := corpusDoc{
		Regenerate: "go test -bench=Corpus -benchtime=100x -run='^$' .",
		Seed:       corpusSeed,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Cache:      *cacheRec,
	}
	for _, name := range order {
		doc.Variants = append(doc.Variants, records[name])
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_solver.json", append(buf, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_solver.json: %d variants, cache hit rate %.3f", len(doc.Variants), doc.Cache.HitRate)
}
