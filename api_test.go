package repro

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fmath"
)

// TestPublicAPIGenerateInstance exercises the corpus generator export:
// deterministic draws, valid instances, and solvable requests.
func TestPublicAPIGenerateInstance(t *testing.T) {
	for i := 0; i < 36; i++ {
		inst, req := GenerateInstance(1, i)
		inst2, req2 := GenerateInstance(1, i)
		if !reflect.DeepEqual(inst, inst2) || !reflect.DeepEqual(req, req2) {
			t.Fatalf("draw %d not deterministic", i)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("draw %d: invalid instance: %v", i, err)
		}
		if _, err := Solve(&inst, req); err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("draw %d: solve failed: %v", i, err)
		}
	}
	inst, _ := GenerateInstance(1, 0)
	other, _ := GenerateInstance(2, 0)
	if reflect.DeepEqual(inst, other) {
		t.Error("different seeds produced identical instances")
	}
}

// TestPublicAPIQuickstart walks the README quick start end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	inst := MotivatingExample()
	res, err := Solve(&inst, Request{
		Rule:         Interval,
		Model:        Overlap,
		Objective:    Energy,
		PeriodBounds: UniformBounds(&inst, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 46) {
		t.Errorf("trade-off energy = %g, want 46", res.Value)
	}
	if err := ValidateMapping(&inst, &res.Mapping, Interval); err != nil {
		t.Error(err)
	}
	if err := VerifyMapping(&inst, &res.Mapping, Overlap, 1e-9); err != nil {
		t.Errorf("simulation disagrees with analytic metrics: %v", err)
	}
	mt := Evaluate(&inst, &res.Mapping, Overlap)
	if !fmath.LE(mt.Period, 2) {
		t.Errorf("period bound violated: %g", mt.Period)
	}
}

// TestPublicAPISolveBatch checks the acceptance criterion of the batch
// engine: SolveBatch returns bit-identical Results to sequential Solve for
// the same jobs, in input order, and reports its dedup work in the stats.
func TestPublicAPISolveBatch(t *testing.T) {
	fig1 := MotivatingExample()
	stream := StreamingCenter(6)
	jobs := []Job{
		{Inst: &fig1, Req: Request{Rule: Interval, Model: Overlap, Objective: Period}},
		{Inst: &fig1, Req: Request{Rule: Interval, Model: Overlap, Objective: Energy,
			PeriodBounds: UniformBounds(&fig1, 2)}},
		{Inst: &stream, Req: Request{Rule: Interval, Objective: Period,
			ExactLimit: 50_000, HeurIters: 800, HeurRestarts: 1}},
		{Inst: &fig1, Req: Request{Rule: Interval, Model: Overlap, Objective: Period}}, // dup of job 0
		{Inst: &fig1, Req: Request{Rule: Interval, Model: Overlap, Objective: Latency}},
	}
	results, stats := SolveBatch(jobs, BatchOptions{})
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, job := range jobs {
		want, wantErr := Solve(job.Inst, job.Req)
		if !errors.Is(results[i].Err, wantErr) {
			t.Fatalf("job %d: error %v, sequential %v", i, results[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(results[i].Result, want) {
			t.Errorf("job %d: batch result differs from sequential Solve", i)
		}
	}
	if stats.CacheHits < 1 {
		t.Errorf("CacheHits = %d, want >= 1 (job 3 duplicates job 0)", stats.CacheHits)
	}
	if stats.Errors != 0 {
		t.Errorf("Errors = %d, want 0", stats.Errors)
	}

	// A shared cache answers a rerun entirely from memory.
	cache := NewSolveCache()
	if _, first := SolveBatch(jobs, BatchOptions{Cache: cache}); first.Jobs != len(jobs) {
		t.Fatal("bad stats from cached batch")
	}
	_, second := SolveBatch(jobs, BatchOptions{Cache: cache})
	if second.CacheHits != len(jobs) {
		t.Errorf("rerun CacheHits = %d, want %d", second.CacheHits, len(jobs))
	}
}

func TestPublicAPIPareto(t *testing.T) {
	inst := MotivatingExample()
	front, err := ParetoPeriodEnergy(&inst, Interval, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	if v := MinEnergyUnderPeriod(front, 2); !fmath.EQ(v, 46) {
		t.Errorf("server problem at period 2: energy %g, want 46", v)
	}
	// At the minimum energy 10 the best period is 6, not the 14 of the
	// paper's illustrative mapping: swapping the applications (App1 on P3,
	// App2 on P1, both slowest modes) also costs 10 but halves the
	// bottleneck. The paper only exhibits one energy-10 mapping, it does
	// not claim period-optimality at that budget.
	if v := MinPeriodUnderEnergy(front, 10); !fmath.EQ(v, 6) {
		t.Errorf("laptop problem at budget 10: period %g, want 6", v)
	}
}

func TestPublicAPIParetoPolynomialPaths(t *testing.T) {
	// Fully homogeneous interval frontier.
	rng := rand.New(rand.NewSource(5))
	inst, err := RandomInstance(rng, WorkloadConfig{
		Apps: 2, MinStages: 2, MaxStages: 4, Procs: 6, Modes: 2,
		Class: FullyHomogeneous, MaxWork: 6, MaxData: 3, MaxSpeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := ParetoPeriodEnergy(&inst, Interval, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Period <= front[i-1].Period || front[i].Energy >= front[i-1].Energy {
			t.Error("frontier not strictly monotone")
		}
	}
}

func TestPublicAPISimulate(t *testing.T) {
	inst := StreamingCenter(8)
	res, err := Solve(&inst, Request{Rule: Interval, Objective: Period,
		ExactLimit: 50_000, HeurIters: 800, HeurRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	sims, err := Simulate(&inst, &res.Mapping, Overlap, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sims) != 3 {
		t.Fatalf("expected 3 per-application results, got %d", len(sims))
	}
	for a, s := range sims {
		if !fmath.EQ(s.SteadyPeriod, res.Metrics.AppPeriods[a]) {
			t.Errorf("app %d: simulated period %g, analytic %g", a, s.SteadyPeriod, res.Metrics.AppPeriods[a])
		}
	}
}

func TestPublicAPIJSONRoundTrip(t *testing.T) {
	inst := MotivatingExample()
	var buf bytes.Buffer
	if err := EncodeInstance(&buf, &inst); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalStages() != 7 {
		t.Error("round trip lost stages")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	inst := MotivatingExample()
	if _, err := Solve(&inst, Request{Rule: Interval, Objective: Energy}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
	if _, err := Solve(&inst, Request{Rule: Interval, Objective: Energy,
		PeriodBounds: UniformBounds(&inst, 0.01)}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("want ErrInfeasible, got %v", err)
	}
}

func TestPublicAPIStretch(t *testing.T) {
	inst := MotivatingExample()
	stretched, err := StretchWeights(&inst, Request{Rule: Interval, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(&stretched, Request{Rule: Interval, Objective: Latency})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(res.Value, 8.0/7.0) {
		t.Errorf("max stretch = %g, want 8/7", res.Value)
	}
}

func TestPublicAPIPlatformConstructors(t *testing.T) {
	hom := NewHomogeneousPlatform(3, []float64{1, 2}, 1, 1)
	if hom.Classify() != FullyHomogeneous {
		t.Error("homogeneous constructor broken")
	}
	ch := NewCommHomogeneousPlatform([][]float64{{1}, {2}}, 1, 1)
	if ch.Classify() != CommHomogeneous {
		t.Error("comm-homogeneous constructor broken")
	}
	het := NewHeterogeneousPlatform(
		[][]float64{{1}, {2}},
		[][]float64{{0, 3}, {3, 0}},
		[][]float64{{1, 2}},
		[][]float64{{2, 1}},
	)
	if het.Classify() != FullyHeterogeneous {
		t.Error("heterogeneous constructor broken")
	}
}

func TestPublicAPIReplication(t *testing.T) {
	inst := Instance{
		Apps: []Application{{
			Stages: []Stage{{Work: 2, Out: 1}, {Work: 18, Out: 1}, {Work: 2, Out: 1}},
			In:     1, Weight: 1,
		}},
		Platform: NewHomogeneousPlatform(6, []float64{2}, 4, 1),
		Energy:   DefaultEnergy,
	}
	plain, err := Solve(&inst, Request{Rule: Interval, Objective: Period})
	if err != nil {
		t.Fatal(err)
	}
	rm, period, err := ReplicatedMinPeriod(&inst, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.LT(period, plain.Value) {
		t.Errorf("replication did not improve the period: %g vs %g", period, plain.Value)
	}
	if err := VerifyReplicatedMapping(&inst, &rm, Overlap, 1e-9); err != nil {
		t.Error(err)
	}
	mt := EvaluateReplicated(&inst, &rm, Overlap)
	if !fmath.EQ(mt.Period, period) {
		t.Errorf("EvaluateReplicated period %g, reported %g", mt.Period, period)
	}
	// Lifting a plain mapping keeps its metrics.
	lift := LiftMapping(&plain.Mapping)
	lmt := EvaluateReplicated(&inst, &lift, Overlap)
	if !fmath.EQ(lmt.Period, plain.Metrics.Period) || !fmath.EQ(lmt.Energy, plain.Metrics.Energy) {
		t.Error("lifted mapping metrics changed")
	}
	sims, err := SimulateReplicated(&inst, &rm, Overlap, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(sims[0].SteadyPeriod, period) {
		t.Errorf("simulated %g, analytic %g", sims[0].SteadyPeriod, period)
	}
}

func TestPublicAPIReplicatedEnergy(t *testing.T) {
	inst := Instance{
		Apps: []Application{{
			Stages: []Stage{{Work: 8}},
			Weight: 1,
		}},
		Platform: NewHomogeneousPlatform(4, []float64{1, 2, 4}, 1, 1),
		Energy:   EnergyModel{Alpha: 3},
	}
	rm, e, err := ReplicatedMinEnergy(&inst, Overlap, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(e, 4) {
		t.Errorf("replicated energy = %g, want 4 (four speed-1 replicas)", e)
	}
	if err := VerifyReplicatedMapping(&inst, &rm, Overlap, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestPublicAPIGeneralMappings(t *testing.T) {
	inst := Instance{
		Apps: []Application{{
			Stages: []Stage{{Work: 1}, {Work: 5}, {Work: 1}},
			Weight: 1,
		}},
		Platform: NewHomogeneousPlatform(2, []float64{1}, 1, 1),
		Energy:   DefaultEnergy,
	}
	gm, opt, err := GeneralMinPeriod(&inst, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.EQ(opt, 5) {
		t.Errorf("general optimum = %g, want 5 (beats the interval optimum 6)", opt)
	}
	if err := gm.Validate(&inst); err != nil {
		t.Error(err)
	}
	_, lpt, err := GeneralLPT(&inst)
	if err != nil {
		t.Fatal(err)
	}
	if fmath.LT(lpt, opt) {
		t.Errorf("LPT %g beats the optimum %g", lpt, opt)
	}
	// Communicating instances are rejected.
	fig1 := MotivatingExample()
	if _, _, err := GeneralMinPeriod(&fig1, 1000); err == nil {
		t.Error("communicating instance accepted by general solver")
	}
}

func TestPublicAPIReplicatedHeuristic(t *testing.T) {
	inst := StreamingCenter(8)
	rm, v, err := ReplicatedHeurMinPeriod(&inst, Overlap, 3, 1500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReplicatedMapping(&inst, &rm, Overlap, 1e-9); err != nil {
		t.Error(err)
	}
	// Replication can use idle processors that plain mappings leave out,
	// so the heuristic should never be worse than the plain heuristic by
	// much; sanity-check against the evaluated mapping only.
	mt := EvaluateReplicated(&inst, &rm, Overlap)
	if !fmath.EQ(mt.Period, v) {
		t.Errorf("reported %g, evaluated %g", v, mt.Period)
	}
}

// TestPublicAPIBatchCtxAndBoundedCache pins the long-running-process
// surface: SolveBatchCtx honours cancellation, NewSolveCacheCap bounds the
// memo, and ParetoPeriodEnergyCtx can be aborted.
func TestPublicAPIBatchCtxAndBoundedCache(t *testing.T) {
	inst := MotivatingExample()
	jobs := []Job{
		{Inst: &inst, Req: Request{Rule: Interval, Objective: Period}},
		{Inst: &inst, Req: Request{Rule: Interval, Objective: Latency}},
	}

	// Background context: identical to SolveBatch.
	got, _ := SolveBatchCtx(context.Background(), jobs, BatchOptions{})
	want, _ := SolveBatch(jobs, BatchOptions{})
	if !reflect.DeepEqual(got, want) {
		t.Error("SolveBatchCtx(background) differs from SolveBatch")
	}

	// Cancelled context: every slot carries the context error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, stats := SolveBatchCtx(ctx, jobs, BatchOptions{})
	if stats.Errors != len(jobs) {
		t.Errorf("cancelled batch: %d errors for %d jobs", stats.Errors, len(jobs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if _, err := ParetoPeriodEnergyCtx(ctx, &inst, Interval, Overlap); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled frontier: err = %v, want context.Canceled", err)
	}

	// Bounded cache: the cap is a hard invariant with evictions reported.
	cache := NewSolveCacheCap(1)
	var sweep []Job
	for x := 1; x <= 8; x++ {
		sweep = append(sweep, Job{Inst: &inst, Req: Request{Rule: Interval, Objective: Energy,
			PeriodBounds: UniformBounds(&inst, float64(x))}})
	}
	SolveBatchCtx(context.Background(), sweep, BatchOptions{Cache: cache})
	if n := cache.Len(); n > 1 {
		t.Errorf("cache holds %d entries, cap 1", n)
	}
	st := cache.Stats()
	if st.Cap != 1 || st.Evictions == 0 {
		t.Errorf("cache stats = %+v, want cap 1 with evictions", st)
	}
}

// TestPublicAPIFaultResolve walks the fault-tolerance exports end to end:
// a deterministic fault schedule over the motivating example, injection
// with re-validation, and a failure re-solve with a migration diff.
func TestPublicAPIFaultResolve(t *testing.T) {
	inst := MotivatingExample()
	sched, err := GenerateFaults(7, &inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched2, err := GenerateFaults(7, &inst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sched, sched2) {
		t.Fatal("equal seeds produced different fault schedules")
	}
	states, err := InjectFaults(&inst, sched.Events)
	if err != nil {
		t.Fatal(err)
	}
	for i := range states {
		if err := states[i].Inst.Validate(); err != nil {
			t.Fatalf("state %d after %v is invalid: %v", i, states[i].Event, err)
		}
	}

	pl, err := Compile(&inst, Interval, Overlap)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Resolve(pl, PlanQuery{Objective: Period}, FaultEvent{Kind: ProcFail, Proc: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !fmath.GE(rr.After.Value, rr.Before.Value) {
		t.Errorf("re-solve after a processor failure improved the period: %g -> %g",
			rr.Before.Value, rr.After.Value)
	}
	if rr.Diff.StagesTotal == 0 {
		t.Error("migration diff reports zero total stages")
	}

	// An event the instance cannot absorb classifies, not crashes.
	single := MotivatingExample()
	single.Platform = NewHomogeneousPlatform(1, []float64{1}, 1, len(single.Apps))
	if _, err := ApplyFault(&single, FaultEvent{Kind: ProcFail, Proc: 0}); !errors.Is(err, ErrFaultInapplicable) {
		t.Errorf("failing the last processor: got %v, want ErrFaultInapplicable", err)
	}
}
